// Command rulegen generates, reduces and inspects Snort-like rulesets.
//
// Usage:
//
//	rulegen -n 6275 -seed 2010 > full.rules      # generate
//	rulegen -in full.rules -reduce 634 > small.rules
//	rulegen -in full.rules -histogram             # Figure 6 series
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	dpi "repro"
)

func main() {
	var (
		n      = flag.Int("n", 0, "generate a synthetic ruleset with n strings")
		seed   = flag.Int64("seed", 2010, "generation / reduction seed")
		in     = flag.String("in", "", "input ruleset file")
		reduce = flag.Int("reduce", 0, "reduce the input to this many strings (distribution preserving)")
		histo  = flag.Bool("histogram", false, "print the length histogram (Figure 6 series)")
	)
	flag.Parse()
	if err := run(os.Stdout, *n, *seed, *in, *reduce, *histo); err != nil {
		fmt.Fprintln(os.Stderr, "rulegen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n int, seed int64, in string, reduce int, histo bool) error {
	var rules *dpi.Ruleset
	var err error
	switch {
	case n > 0 && in == "":
		rules, err = dpi.GenerateSnortLike(n, seed)
	case in != "":
		f, ferr := os.Open(in)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		rules, err = dpi.ParseRuleset(f)
	default:
		return fmt.Errorf("pass -n to generate or -in to read a ruleset")
	}
	if err != nil {
		return err
	}
	if reduce > 0 {
		rules, err = rules.Reduce(reduce, seed)
		if err != nil {
			return err
		}
	}
	if histo {
		counts := make(map[int]int)
		for id := 0; ; id++ {
			c := rules.Content(id)
			if c == nil {
				if id > 8192 {
					break
				}
				continue
			}
			l := len(c)
			if l > 50 {
				l = 50
			}
			counts[l]++
		}
		fmt.Fprintln(w, "# length\tcount (50 = 50+)")
		for l := 1; l <= 50; l++ {
			fmt.Fprintf(w, "%d\t%d\n", l, counts[l])
		}
		fmt.Fprintf(w, "# %d strings, %d chars total\n", rules.Len(), rules.CharCount())
		return nil
	}
	return rules.Write(w)
}
