package main

import (
	"os"
	"strings"
	"testing"
)

// TestGoldenSnapshotCurrent is the in-tree half of the API gate CI runs:
// the committed golden file must equal the surface regenerated from
// source, so an exported-API change always lands together with its
// reviewed api/dpi.txt diff.
func TestGoldenSnapshotCurrent(t *testing.T) {
	snap, err := snapshot("../..")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../api/dpi.txt")
	if err != nil {
		t.Fatal(err)
	}
	if d := diff(string(golden), snap); d != "" {
		t.Fatalf("exported API drifted from api/dpi.txt (regenerate with `go run ./cmd/apisnapshot -write api/dpi.txt`):\n%s", d)
	}
}

// TestSnapshotShape pins the listing's load-bearing properties: sorted,
// deterministic, exported-only, and covering every declaration kind the
// v1 surface uses.
func TestSnapshotShape(t *testing.T) {
	snap, err := snapshot("../..")
	if err != nil {
		t.Fatal(err)
	}
	again, err := snapshot("../..")
	if err != nil {
		t.Fatal(err)
	}
	if snap != again {
		t.Fatal("snapshot is not deterministic across runs")
	}
	lines := strings.Split(strings.TrimRight(snap, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatalf("missing header: %q", lines[0])
	}
	body := lines[1:]
	for i := 1; i < len(body); i++ {
		if body[i] < body[i-1] {
			t.Fatalf("lines not sorted: %q before %q", body[i-1], body[i])
		}
	}
	for _, want := range []string{
		"func Compile(", "func NewGateway(",
		"method (*Gateway) SwapRules(m *Matcher) error",
		"method (*Matcher) Generation() uint64",
		"var ErrBadConfig", "var ErrClosed", "var ErrStaleGeneration",
		"type GenerationInfo struct", "field GatewayStats.GenerationsRetired uint64",
	} {
		found := false
		for _, l := range body {
			if strings.HasPrefix(l, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("snapshot is missing %q", want)
		}
	}
	for _, l := range body {
		if strings.Contains(l, " disableBaked") || strings.HasPrefix(l, "func new") {
			t.Errorf("unexported symbol leaked into the snapshot: %q", l)
		}
	}
}

func TestDiff(t *testing.T) {
	d := diff("a\nb\nc\n", "a\nc\nd\n")
	if d != "-b\n+d\n" {
		t.Fatalf("diff = %q", d)
	}
	if d := diff("a\n", "a\n"); d != "" {
		t.Fatalf("identical inputs diff = %q", d)
	}
}
