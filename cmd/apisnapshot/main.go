// Command apisnapshot dumps the exported API surface of the root dpi
// package as a sorted, deterministic text listing — one line per exported
// const, var, func, type, method and struct field. The golden copy lives
// at api/dpi.txt; CI regenerates the listing and fails on any drift, so
// an API change (adding a method counts, renaming a field counts) is
// always a reviewed, committed diff to the golden file rather than a
// silent compatibility break.
//
// Usage:
//
//	apisnapshot                    # print the current surface to stdout
//	apisnapshot -write api/dpi.txt # refresh the golden file
//	apisnapshot -check api/dpi.txt # exit 1 (with a diff) on drift
//
// Only the standard library is used; the tool parses source, it does not
// type-check, so it runs before the package even compiles.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		dir   = flag.String("dir", ".", "package directory to snapshot")
		write = flag.String("write", "", "write the snapshot to this file")
		check = flag.String("check", "", "compare the snapshot against this golden file; exit 1 on drift")
	)
	flag.Parse()
	snap, err := snapshot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisnapshot:", err)
		os.Exit(1)
	}
	switch {
	case *check != "":
		golden, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apisnapshot:", err)
			os.Exit(1)
		}
		if d := diff(string(golden), snap); d != "" {
			fmt.Fprintf(os.Stderr, "apisnapshot: exported API drifted from %s:\n%s", *check, d)
			fmt.Fprintf(os.Stderr, "apisnapshot: if the change is intended, refresh with: go run ./cmd/apisnapshot -write %s\n", *check)
			os.Exit(1)
		}
	case *write != "":
		if err := os.WriteFile(*write, []byte(snap), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apisnapshot:", err)
			os.Exit(1)
		}
	default:
		fmt.Print(snap)
	}
}

// snapshot parses every non-test file of the package in dir and renders
// its exported surface, sorted line by line.
func snapshot(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	if len(pkgs) != 1 {
		names := make([]string, 0, len(pkgs))
		for n := range pkgs {
			names = append(names, n)
		}
		return "", fmt.Errorf("%s holds %d packages (%s), want exactly 1", dir, len(pkgs), strings.Join(names, ", "))
	}
	var lines []string
	var pkgName string
	for name, pkg := range pkgs {
		pkgName = name
		for _, f := range pkg.Files {
			lines = append(lines, fileLines(fset, f)...)
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	fmt.Fprintf(&b, "# Exported API of package %s. Regenerate: go run ./cmd/apisnapshot -write api/%s.txt\n", pkgName, pkgName)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func fileLines(fset *token.FileSet, f *ast.File) []string {
	var lines []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if l, ok := funcLine(fset, d); ok {
				lines = append(lines, l)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					kind := "const"
					if d.Tok == token.VAR {
						kind = "var"
					}
					for _, n := range s.Names {
						if !n.IsExported() {
							continue
						}
						l := kind + " " + n.Name
						if s.Type != nil {
							l += " " + render(fset, s.Type)
						}
						lines = append(lines, l)
					}
				case *ast.TypeSpec:
					if s.Name.IsExported() {
						lines = append(lines, typeLines(fset, s)...)
					}
				}
			}
		}
	}
	return lines
}

// funcLine renders an exported function or an exported method on an
// exported receiver type as one line.
func funcLine(fset *token.FileSet, d *ast.FuncDecl) (string, bool) {
	if !d.Name.IsExported() {
		return "", false
	}
	sig := strings.TrimPrefix(render(fset, d.Type), "func")
	if d.Recv == nil {
		return "func " + d.Name.Name + sig, true
	}
	recv := render(fset, d.Recv.List[0].Type)
	if !ast.IsExported(strings.TrimLeft(recv, "*")) {
		return "", false
	}
	return "method (" + recv + ") " + d.Name.Name + sig, true
}

// typeLines renders an exported type: its kind line, plus one line per
// exported struct field or interface method, so a field rename or method
// signature change shows up as a minimal diff.
func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	name := s.Name.Name
	eq := ""
	if s.Assign != token.NoPos {
		eq = "= " // alias
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		lines := []string{"type " + name + " " + eq + "struct"}
		for _, f := range t.Fields.List {
			typ := render(fset, f.Type)
			if len(f.Names) == 0 { // embedded
				lines = append(lines, "field "+name+"."+strings.TrimLeft(typ, "*")+" "+typ)
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					lines = append(lines, "field "+name+"."+fn.Name+" "+typ)
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{"type " + name + " " + eq + "interface"}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				lines = append(lines, "ifacemethod "+name+"."+render(fset, m.Type))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					sig := strings.TrimPrefix(render(fset, m.Type), "func")
					lines = append(lines, "ifacemethod "+name+"."+mn.Name+sig)
				}
			}
		}
		return lines
	default:
		return []string{"type " + name + " " + eq + render(fset, s.Type)}
	}
}

// render prints one AST node to a single normalized line.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// diff emits a minimal line diff (golden vs current) — enough to show in
// CI logs which symbols appeared or vanished, without pulling in a diff
// library.
func diff(golden, current string) string {
	g := strings.Split(strings.TrimRight(golden, "\n"), "\n")
	c := strings.Split(strings.TrimRight(current, "\n"), "\n")
	inG := map[string]bool{}
	for _, l := range g {
		inG[l] = true
	}
	inC := map[string]bool{}
	for _, l := range c {
		inC[l] = true
	}
	var b strings.Builder
	for _, l := range g {
		if !inC[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range c {
		if !inG[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
