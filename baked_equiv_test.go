package dpi

import (
	"testing"

	"repro/internal/ac"
)

// fuzzRulesFrom derives a small ruleset from a fuzz blob: each pattern is
// a length byte (1-12 bytes) followed by its content, up to 8 patterns,
// duplicates skipped. Returns nil when the blob yields no usable pattern.
func fuzzRulesFrom(blob []byte) *Ruleset {
	rules := NewRuleset()
	for len(blob) > 0 && rules.Len() < 8 {
		l := int(blob[0])%12 + 1
		blob = blob[1:]
		if l > len(blob) {
			l = len(blob)
		}
		if l == 0 {
			break
		}
		rules.Add("", blob[:l]) // duplicate contents just error; ignore
		blob = blob[l:]
	}
	if rules.Len() == 0 {
		return nil
	}
	return rules
}

// FuzzBakedEquivalence is the compiled-kernel contract under fuzz: for a
// fuzz-chosen ruleset, payload and operation sequence (chunked writes,
// mid-stream SkipGap, Reset), the baked Program path, the slice-walking
// Machine.Next reference path and the uncompressed Aho-Corasick oracle
// must produce identical match streams — same patterns, same absolute
// offsets, same order. The first op byte also varies the compile shape
// (dense-tier budget, group split) so every tier combination is driven.
func FuzzBakedEquivalence(f *testing.F) {
	f.Add([]byte{2, 'h', 'e', 3, 's', 'h', 'e', 3, 'h', 'i', 's', 4, 'h', 'e', 'r', 's'},
		[]byte("ushers say she sells seashells"), []byte{0x10, 0x43, 0x08, 0x00, 0x22})
	f.Add([]byte{1, 'a', 2, 'a', 'a', 3, 'a', 'a', 'a'},
		[]byte("aaaaaaaaaaaaaaaa"), []byte{0x05, 0x09, 0x11, 0x01, 0x31})
	f.Add([]byte{4, 0x00, 0xff, 0x00, 0xff}, []byte{0x00, 0xff, 0x00, 0xff, 0x00},
		[]byte{0x83, 0x04})
	f.Add([]byte{3, 'a', 'b', 'c'}, []byte("abcabcabc"), []byte{})
	f.Fuzz(func(t *testing.T, patBlob, payload, ops []byte) {
		rules := fuzzRulesFrom(patBlob)
		if rules == nil {
			t.Skip("no patterns")
		}
		shape := byte(0)
		if len(ops) > 0 {
			shape = ops[0]
		}
		cfg := Config{}
		switch shape % 3 {
		case 1:
			cfg.DenseStates = -1 // compressed tier only
		case 2:
			cfg.DenseStates = 6 // tiny dense tier, most states on CSR
		}
		if shape&0x40 != 0 && rules.Len() >= 2 {
			cfg.Groups = 2
		}
		refCfg := cfg
		refCfg.Backend = BackendReference

		baked, err := Compile(rules, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !baked.Kernel().Baked {
			t.Fatal("default compile produced no baked kernel")
		}
		ref, err := Compile(rules, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Kernel().Baked {
			t.Fatal("BackendReference still reports a baked kernel")
		}
		trie, err := ac.New(rules.InternalSet())
		if err != nil {
			t.Fatal(err)
		}

		var bOut, rOut []Match
		bf := baked.NewEngine(1).Flow(func(m Match) { bOut = append(bOut, m) })
		rf := ref.NewEngine(1).Flow(func(m Match) { rOut = append(rOut, m) })
		defer bf.Close()
		defer rf.Close()

		var seg []byte // contiguous bytes both flows have seen since the last gap
		segStart := 0  // flow position where the segment began
		segMark := 0   // len(bOut) when the segment began
		checkSegment := func() {
			t.Helper()
			// The trie emits same-End matches in output-chain order; the
			// flow APIs guarantee canonical (End, PatternID) order.
			want := trie.FindAll(seg)
			ac.SortMatches(want)
			got := bOut[segMark:]
			if len(got) != len(want) {
				t.Fatalf("segment at %d: baked found %d matches, oracle %d (shape %#x)",
					segStart, len(got), len(want), shape)
			}
			for i, w := range want {
				end := w.End + segStart
				start := end - trie.PatternLen(w.PatternID)
				if got[i].PatternID != int(w.PatternID) || got[i].End != end || got[i].Start != start {
					t.Fatalf("segment at %d: match %d = %+v, oracle id=%d [%d,%d)",
						segStart, i, got[i], w.PatternID, start, end)
				}
			}
		}
		checkAgainstRef := func(op string) {
			t.Helper()
			if bf.Consumed() != rf.Consumed() {
				t.Fatalf("%s: baked consumed %d, reference %d", op, bf.Consumed(), rf.Consumed())
			}
			if len(bOut) != len(rOut) {
				t.Fatalf("%s: baked emitted %d matches, reference %d", op, len(bOut), len(rOut))
			}
			for i := range bOut {
				if bOut[i] != rOut[i] {
					t.Fatalf("%s: match %d baked %+v reference %+v", op, i, bOut[i], rOut[i])
				}
			}
		}

		off := 0 // cycling read offset into payload
		for _, op := range ops {
			switch op % 8 {
			case 0: // Reset: flow restarts at position zero
				checkSegment()
				bf.Reset()
				rf.Reset()
				seg, segStart, segMark = seg[:0], 0, len(bOut)
			case 1: // SkipGap: unseen bytes, absolute offsets preserved
				checkSegment()
				n := int(op>>3) + 1
				bf.SkipGap(n)
				rf.SkipGap(n)
				seg, segStart, segMark = seg[:0], bf.Consumed(), len(bOut)
			default: // write a chunk of the payload (cycling, possibly empty)
				n := int(op >> 2)
				if len(payload) == 0 {
					n = 0
				}
				chunk := make([]byte, 0, n)
				for len(chunk) < n {
					take := len(payload) - off
					if take > n-len(chunk) {
						take = n - len(chunk)
					}
					chunk = append(chunk, payload[off:off+take]...)
					off = (off + take) % len(payload)
				}
				seg = append(seg, chunk...)
				bf.Write(chunk)
				rf.Write(chunk)
			}
			checkAgainstRef("op")
		}
		checkSegment()
	})
}
