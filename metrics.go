package dpi

// The metrics seam: Gateway.Metrics() is the observability half of the
// capture-to-verdict edge. Everything it exports is a counter the pipeline
// already keeps — GatewayStats, per-shard EngineStats, flow-table
// occupancy and evictions by reason, reassembly buffer pressure, and the
// per-rule verdict/match counters — rendered on demand into the
// Prometheus text exposition format by internal/metrics. A scrape costs
// one snapshot and one buffer render; nothing on the packet hot path
// knows metrics exist. OPERATIONS.md documents every series, its type and
// labels, and what alerting on it means.

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"repro/internal/metrics"
)

// Healthz returns the gateway's liveness endpoint: 200 with a JSON
// GatewayHealth body while no lane is stalled, 503 (same body) once the
// watchdog sees work older than StallThreshold on some lane. Mount it at
// /healthz next to Metrics at /metrics.
func (g *Gateway) Healthz() http.Handler {
	return metrics.Healthz(func() (bool, []byte) {
		h := g.Health()
		body, err := json.Marshal(h)
		if err != nil { // unreachable: GatewayHealth is plain data
			return false, []byte(`{"healthy":false}`)
		}
		return h.Healthy, body
	})
}

// GatewayMetrics renders a Gateway's counters in the Prometheus text
// exposition format (version 0.0.4). It implements http.Handler — mount
// it at /metrics — and WriteTo for non-HTTP collection. Every render is a
// fresh point-in-time snapshot; the value is safe to share and scrape
// concurrently while the gateway runs.
type GatewayMetrics struct {
	g *Gateway
	h http.Handler
}

// Metrics returns the gateway's Prometheus-format metrics surface.
func (g *Gateway) Metrics() *GatewayMetrics {
	gm := &GatewayMetrics{g: g}
	gm.h = metrics.Handler(gm.render)
	return gm
}

// ServeHTTP serves one exposition per GET/HEAD request with the
// text-format Content-Type.
func (gm *GatewayMetrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gm.h.ServeHTTP(w, r)
}

// WriteTo renders one exposition to w.
func (gm *GatewayMetrics) WriteTo(w io.Writer) (int64, error) {
	var mw metrics.Writer
	gm.render(&mw)
	return mw.WriteTo(w)
}

func (gm *GatewayMetrics) render(w *metrics.Writer) {
	g := gm.g
	s := g.Stats()
	ts := g.table.Stats()

	w.Metric("dpi_backend_info", "gauge",
		"Scan backend every shard runs (see Config.Backend); value is always 1.")
	w.Sample(1, metrics.Label{Name: "backend", Value: g.Backend()})

	w.Metric("dpi_gateway_engine_shards", "gauge", "Engine replicas behind this gateway.")
	w.Sample(float64(s.EngineShards))

	w.Metric("dpi_gateway_packets_total", "counter", "Packets ingested.")
	w.Sample(float64(s.Packets))
	w.Metric("dpi_gateway_payload_bytes_total", "counter", "Payload bytes ingested.")
	w.Sample(float64(s.Bytes))
	w.Metric("dpi_gateway_stream_packets_total", "counter",
		"Packets routed through per-flow stream state (TCP).")
	w.Sample(float64(s.StreamPackets))
	w.Metric("dpi_gateway_batch_packets_total", "counter",
		"Packets scanned statelessly in bursts (UDP and other IP).")
	w.Sample(float64(s.BatchPackets))
	w.Metric("dpi_gateway_batches_total", "counter", "Bursts handed to the batch scanners.")
	w.Sample(float64(s.Batches))
	w.Metric("dpi_gateway_matches_total", "counter", "FlowMatches emitted.")
	w.Sample(float64(s.Matches))

	w.Metric("dpi_gateway_reassembled_bytes_total", "counter",
		"Bytes delivered to scanners in stream order by TCP reassembly.")
	w.Sample(float64(s.ReassembledBytes))
	w.Metric("dpi_gateway_out_of_order_segments_total", "counter",
		"Segments that had to be buffered out of order.")
	w.Sample(float64(s.OutOfOrderSegs))
	w.Metric("dpi_gateway_duplicate_bytes_total", "counter",
		"Retransmitted or overlapping bytes discarded by the overlap policy.")
	w.Sample(float64(s.DuplicateBytes))
	w.Metric("dpi_gateway_reassembly_dropped_bytes_total", "counter",
		"Out-of-order bytes dropped to the per-flow or global buffer caps.")
	w.Sample(float64(s.ReassemblyDrops))
	w.Metric("dpi_gateway_gap_skips_total", "counter", "Reassembly gaps skipped on timeout.")
	w.Sample(float64(s.GapSkips))
	w.Metric("dpi_gateway_gap_skipped_bytes_total", "counter",
		"Unseen stream bytes skipped past on gap timeouts.")
	w.Sample(float64(s.GapSkippedBytes))
	w.Metric("dpi_gateway_reassembly_buffered_bytes", "gauge",
		"Out-of-order bytes currently buffered across all flows.")
	w.Sample(float64(s.BufferedBytes))
	w.Metric("dpi_gateway_reassembly_buffer_limit_bytes", "gauge",
		"Configured global out-of-order buffer cap (0 = unlimited).")
	limit := g.cfg.MaxTotalBuffer
	if limit < 0 {
		limit = 0
	}
	w.Sample(float64(limit))

	w.Metric("dpi_gateway_overload_policy_info", "gauge",
		"Configured overload policy (see GatewayConfig.OverloadPolicy); value is always 1.")
	w.Sample(1, metrics.Label{Name: "policy", Value: g.cfg.OverloadPolicy.String()})
	w.Metric("dpi_gateway_scanned_bytes_total", "counter",
		"Payload bytes delivered to a scanner (stream + burst) — the Scanned ledger bucket.")
	w.Sample(float64(s.ScannedBytes))
	w.Metric("dpi_gateway_shed_packets_total", "counter",
		"Packets shed at admission under a shedding overload policy.")
	w.Sample(float64(s.ShedPackets))
	w.Metric("dpi_gateway_shed_bytes_total", "counter",
		"Payload bytes of shed packets — the Shed ledger bucket.")
	w.Sample(float64(s.ShedBytes))
	w.Metric("dpi_gateway_shed_new_flows_total", "counter",
		"Shed packets that would have created new flow state (ShedNewFlows).")
	w.Sample(float64(s.ShedNewFlows))
	w.Metric("dpi_gateway_abandoned_bytes_total", "counter",
		"Ingested bytes released unscanned when their connection went away (RST payloads, buffered bytes freed on RST/FIN/eviction).")
	w.Sample(float64(s.AbandonedBytes))

	w.Metric("dpi_panics_total", "counter",
		"Panics recovered by containment, per engine shard. Any non-zero value deserves a bug report; a growing one, an alert.")
	for i, n := range g.PanicsByShard() {
		w.Sample(float64(n), metrics.Label{Name: "shard", Value: strconv.Itoa(i)})
	}
	w.Metric("dpi_gateway_quarantined_flows_total", "counter",
		"Flows evicted because scanning them panicked.")
	w.Sample(float64(s.QuarantinedFlows))
	w.Metric("dpi_gateway_quarantined_packets_total", "counter",
		"Packets discarded by panic containment (the panicking packet and any stragglers of quarantined flows).")
	w.Sample(float64(s.QuarantinedPackets))
	w.Metric("dpi_gateway_quarantined_bytes_total", "counter",
		"Payload bytes discarded by panic containment — the quarantine ledger bucket.")
	w.Sample(float64(s.QuarantinedBytes))

	health := g.Health()
	stalled := 0
	var oldest float64
	for _, lh := range health.BusyLanes {
		if lh.Stalled {
			stalled++
		}
		if age := lh.Age.Seconds(); age > oldest {
			oldest = age
		}
	}
	w.Metric("dpi_gateway_stalled_lanes", "gauge",
		"Stream lanes whose queued work is older than StallThreshold right now.")
	w.Sample(float64(stalled))
	w.Metric("dpi_gateway_lane_max_age_seconds", "gauge",
		"Age of the oldest un-progressed work across busy lanes (0 when all lanes are idle).")
	w.Sample(oldest)

	w.Metric("dpi_gateway_verdicts_total", "counter",
		"Header-rule classifications by action (per TCP connection, per stateless packet).")
	w.Sample(float64(s.VerdictAlerts), metrics.Label{Name: "verdict", Value: "alert"})
	w.Sample(float64(s.VerdictDrops), metrics.Label{Name: "verdict", Value: "drop"})
	w.Sample(float64(s.VerdictPasses), metrics.Label{Name: "verdict", Value: "pass"})
	w.Metric("dpi_gateway_verdict_dropped_bytes_total", "counter",
		"Payload bytes of verdict-dropped traffic, discarded unscanned.")
	w.Sample(float64(s.DroppedBytes))
	w.Metric("dpi_gateway_verdict_passed_bytes_total", "counter",
		"Payload bytes of verdict-passed traffic, exempted unscanned.")
	w.Sample(float64(s.PassedBytes))

	// Hot-reload control plane (Gateway.SwapRules). The flows-by-generation
	// gauge only lists live (non-retired) generations: an old generation
	// present here is draining, and one stuck with flows > 0 names the
	// long-lived connections pinning it — the series the reload runbook
	// alerts on.
	w.Metric("dpi_ruleset_generation", "gauge",
		"Installed ruleset generation new flows and bursts scan with.")
	w.Sample(float64(s.Generation))
	w.Metric("dpi_ruleset_swaps_total", "counter",
		"Successful SwapRules hot reloads.")
	w.Sample(float64(s.RulesetSwaps))
	w.Metric("dpi_ruleset_generations_installed_total", "counter",
		"Ruleset generations ever installed (the initial one included).")
	w.Sample(float64(s.GenerationsInstalled))
	w.Metric("dpi_ruleset_generations_retired_total", "counter",
		"Old ruleset generations fully drained and retired.")
	w.Sample(float64(s.GenerationsRetired))
	w.Metric("dpi_flows_by_generation", "gauge",
		"Live flows pinned to each non-retired ruleset generation.")
	for _, gi := range g.Generations() {
		w.Sample(float64(gi.Flows),
			metrics.Label{Name: "generation", Value: strconv.FormatUint(gi.Generation, 10)})
	}

	w.Metric("dpi_gateway_flows_live", "gauge", "Flow-table entries currently live.")
	w.Sample(float64(ts.Live))
	w.Metric("dpi_gateway_flows_created_total", "counter", "Flow-table entries created.")
	w.Sample(float64(ts.Created))
	w.Metric("dpi_gateway_flows_evicted_total", "counter",
		"Flow-table entries removed, by reason: capacity (MaxFlows pressure), idle (IdleTimeout), teardown (RST).")
	w.Sample(float64(ts.EvictedCap), metrics.Label{Name: "reason", Value: "capacity"})
	w.Sample(float64(ts.EvictedIdle), metrics.Label{Name: "reason", Value: "idle"})
	w.Sample(float64(ts.Removed), metrics.Label{Name: "reason", Value: "teardown"})
	w.Metric("dpi_gateway_flows_finished_total", "counter", "Connections completed via FIN.")
	w.Sample(float64(s.FlowsFinished))
	w.Metric("dpi_gateway_flows_reset_total", "counter", "Connections torn down by RST.")
	w.Sample(float64(s.FlowsReset))
	w.Metric("dpi_gateway_flow_table_clock", "gauge",
		"Flow-table logical clock: table-wide stream packets seen (the unit IdleTimeout is measured in).")
	w.Sample(float64(ts.Clock))

	shardStats := g.ShardStats()
	shardLabel := func(i int) metrics.Label {
		return metrics.Label{Name: "shard", Value: strconv.Itoa(i)}
	}
	w.Metric("dpi_engine_batches_total", "counter",
		"Stateless scan batches per engine shard.")
	for i, es := range shardStats {
		w.Sample(float64(es.Batches), shardLabel(i))
	}
	w.Metric("dpi_engine_batch_packets_total", "counter",
		"Stateless payloads scanned per engine shard.")
	for i, es := range shardStats {
		w.Sample(float64(es.BatchPkts), shardLabel(i))
	}
	w.Metric("dpi_engine_batch_bytes_total", "counter",
		"Stateless payload bytes scanned per engine shard.")
	for i, es := range shardStats {
		w.Sample(float64(es.BatchBytes), shardLabel(i))
	}
	w.Metric("dpi_engine_flows_opened_total", "counter",
		"Scanner-state checkouts from each shard's flow pool.")
	for i, es := range shardStats {
		w.Sample(float64(es.FlowsOpened), shardLabel(i))
	}
	w.Metric("dpi_engine_stream_bytes_total", "counter",
		"Stream bytes scanned per engine shard.")
	for i, es := range shardStats {
		w.Sample(float64(es.StreamBytes), shardLabel(i))
	}

	rules := g.RuleStats()
	if len(rules) > 0 {
		ruleLabels := func(r RuleStats) []metrics.Label {
			return []metrics.Label{
				{Name: "rule_id", Value: strconv.Itoa(r.ID)},
				{Name: "rule", Value: r.Name},
				{Name: "verdict", Value: r.Verdict.String()},
			}
		}
		w.Metric("dpi_rule_flows_total", "counter",
			"Classification decisions per verdict rule (per TCP connection, per stateless packet).")
		for _, r := range rules {
			w.Sample(float64(r.Flows), ruleLabels(r)...)
		}
		w.Metric("dpi_rule_matches_total", "counter",
			"Matches admitted per verdict rule (always 0 for drop/pass rules).")
		for _, r := range rules {
			w.Sample(float64(r.Matches), ruleLabels(r)...)
		}
	}
}
