package dpi_test

// Godoc examples for the capture-to-verdict edge: replaying a committed
// libpcap corpus through the gateway, and scraping the gateway's
// Prometheus-format metrics surface. Both run under go test against the
// corpora in testdata/pcap/, so the printed numbers are the same ground
// truth the corpus tests and the CI sensor-smoke job pin.

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"

	dpi "repro"
	"repro/internal/capture/corpus"
)

// Example_pcapReplay feeds a capture file into a sharded gateway with
// one signature. The corpus plants "/etc/passwd" exactly once, inside a
// TCP flow whose segments arrive out of order — the match surfaces
// anyway because reassembly restores the stream before scanning.
func Example_pcapReplay() {
	rs := dpi.NewRuleset()
	rs.MustAdd("etc-passwd", []byte("/etc/passwd"))
	m, err := dpi.Compile(rs, dpi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	var matches atomic.Uint64
	gw := m.NewEngine(1).Gateway(dpi.GatewayConfig{EngineShards: 2},
		func(dpi.FlowMatch) { matches.Add(1) })
	defer gw.Close()

	f, err := os.Open("testdata/pcap/evasion-wrap.pcap")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	st, err := gw.ReplayPcap(f)
	if err != nil {
		log.Fatal(err)
	}
	gw.Flush()

	fmt.Printf("frames=%d ingested=%d matches=%d\n",
		st.Frames, st.Ingested, matches.Load())
	// Output:
	// frames=28 ingested=26 matches=1
}

// ExampleGateway_Metrics replays a corpus and scrapes the gateway's
// metrics surface. The exposition is the Prometheus text format; here a
// few stable series are picked out of the full scrape.
func ExampleGateway_Metrics() {
	rs := dpi.NewRuleset()
	for _, r := range corpus.Rules() {
		rs.MustAdd(r.Name, []byte(r.Content))
	}
	m, err := dpi.Compile(rs, dpi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	gw := m.NewEngine(1).Gateway(dpi.GatewayConfig{EngineShards: 2},
		func(dpi.FlowMatch) {})
	defer gw.Close()

	f, err := os.Open("testdata/pcap/http-mixed.pcap")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := gw.ReplayPcap(f); err != nil {
		log.Fatal(err)
	}
	gw.Flush()

	var buf bytes.Buffer
	if _, err := gw.Metrics().WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "dpi_gateway_packets_total "),
			strings.HasPrefix(line, "dpi_gateway_matches_total "),
			strings.HasPrefix(line, "dpi_gateway_flows_created_total "):
			fmt.Println(line)
		}
	}
	// Output:
	// dpi_gateway_packets_total 33
	// dpi_gateway_matches_total 9
	// dpi_gateway_flows_created_total 8
}
