package dpi

// Pcap scenario regression tests: the committed corpora under
// testdata/pcap/ replay through the full sharded gateway and must
// reproduce the per-flow FindAll oracle exactly — every match the truth
// streams contain, at the same stream offsets, attributed to the same
// tuples, and nothing else. The corpora are themselves programs
// (internal/capture/corpus); the drift guard below pins the committed
// bytes to those programs so neither can change without the other.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/capture/corpus"
)

// corpusMatcher compiles the corpus ruleset with the given backend.
func corpusMatcher(t *testing.T, backend string) *Matcher {
	t.Helper()
	rs := NewRuleset()
	for _, r := range corpus.Rules() {
		rs.MustAdd(r.Name, []byte(r.Content))
	}
	m, err := Compile(rs, Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// matchKey identifies one match for multiset comparison. PacketID is
// deliberately excluded: attribution of a match to the packet that
// completed it is covered by the gateway tests; the oracle here is about
// bytes, offsets and patterns.
type matchKey struct {
	tuple      FiveTuple
	pid        int
	start, end int
}

// oracleCounts runs FindAll over a corpus's truth streams and stateless
// payloads, producing the multiset of matches a correct replay must emit.
func oracleCounts(m *Matcher, c *corpus.Corpus) map[matchKey]int {
	want := map[matchKey]int{}
	for _, f := range c.TCPFlows {
		for _, mm := range m.FindAll(f.Stream) {
			want[matchKey{f.Tuple, mm.PatternID, mm.Start, mm.End}]++
		}
	}
	for _, p := range c.Stateless {
		for _, mm := range m.FindAll(p.Payload) {
			want[matchKey{p.Tuple, mm.PatternID, mm.Start, mm.End}]++
		}
	}
	return want
}

// TestCommittedCorporaMatch is the drift guard: the committed pcap bytes
// must equal what the corpus definitions generate. Regenerate with
// `go run ./cmd/pcapgen` after changing a definition.
func TestCommittedCorporaMatch(t *testing.T) {
	for _, c := range corpus.All() {
		path := filepath.Join("testdata", "pcap", c.File)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go run ./cmd/pcapgen` to generate)", path, err)
		}
		if !bytes.Equal(got, c.Bytes()) {
			t.Errorf("%s: committed bytes differ from the corpus definition; run `go run ./cmd/pcapgen`", path)
		}
	}
}

// TestPcapScenarioOracle replays each committed corpus through gateways
// with 1, 2 and 4 engine shards and requires the emitted match multiset to
// equal the FindAll oracle over the corpus truth exactly.
func TestPcapScenarioOracle(t *testing.T) {
	for _, c := range corpus.All() {
		m := corpusMatcher(t, BackendAuto)
		want := oracleCounts(m, c)
		raw, err := os.ReadFile(filepath.Join("testdata", "pcap", c.File))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4} {
			var mu sync.Mutex
			got := map[matchKey]int{}
			gw := m.NewEngine(2).Gateway(GatewayConfig{EngineShards: shards}, func(fm FlowMatch) {
				mu.Lock()
				got[matchKey{fm.Tuple, fm.PatternID, fm.Start, fm.End}]++
				mu.Unlock()
			})
			rs, err := gw.ReplayPcap(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("%s/shards=%d: replay: %v", c.Name, shards, err)
			}
			gw.Flush()
			gw.Close()

			if rs.Frames != c.Stats.Frames || rs.TCPSegments != c.Stats.TCPSegments ||
				rs.UDPPackets != c.Stats.UDPPackets || rs.OtherIPPackets != c.Stats.OtherIP ||
				rs.NonIP != c.Stats.NonIP || rs.Fragments != c.Stats.Fragments ||
				rs.PureAcks != c.Stats.EmptyTCP || rs.VLANTags != c.Stats.VLANTags ||
				rs.Truncated != c.Stats.Truncated {
				t.Errorf("%s/shards=%d: replay stats %+v disagree with corpus accounting %+v",
					c.Name, shards, rs, c.Stats)
			}
			if rs.Ingested != rs.TCPSegments+rs.UDPPackets+rs.OtherIPPackets {
				t.Errorf("%s/shards=%d: Ingested %d != delivered sum", c.Name, shards, rs.Ingested)
			}

			for k, n := range want {
				if got[k] != n {
					t.Errorf("%s/shards=%d: match %+v: got %d, oracle %d", c.Name, shards, k, got[k], n)
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("%s/shards=%d: unexpected match %+v ×%d", c.Name, shards, k, n)
				}
			}
		}
	}
}

// TestPcapScenarioOracleAllBackends replays the evasion corpus (the one
// with wraparound and reordering) through every registered backend on a
// sharded gateway — the capture edge must not disturb the byte-exactness
// contract the backends are proven against.
func TestPcapScenarioOracleAllBackends(t *testing.T) {
	c := corpus.EvasionWrap()
	raw, err := os.ReadFile(filepath.Join("testdata", "pcap", c.File))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{BackendReference, BackendBaked, BackendPrefiltered, BackendAccelerated} {
		m := corpusMatcher(t, backend)
		want := oracleCounts(m, c)
		var mu sync.Mutex
		got := map[matchKey]int{}
		gw := m.NewEngine(2).Gateway(GatewayConfig{EngineShards: 2}, func(fm FlowMatch) {
			mu.Lock()
			got[matchKey{fm.Tuple, fm.PatternID, fm.Start, fm.End}]++
			mu.Unlock()
		})
		if _, err := gw.ReplayPcap(bytes.NewReader(raw)); err != nil {
			t.Fatalf("%s: replay: %v", backend, err)
		}
		gw.Flush()
		gw.Close()
		for k, n := range want {
			if got[k] != n {
				t.Errorf("%s: match %+v: got %d, oracle %d", backend, k, got[k], n)
			}
		}
		for k := range got {
			if want[k] == 0 {
				t.Errorf("%s: unexpected match %+v", backend, k)
			}
		}
	}
}

// TestPcapReplayAcrossFileBoundary splits the evasion corpus's records
// into two pcap files — rotated captures of one link — and replays both
// into one gateway. Flows (including the sequence-wraparound flow, whose
// segments and planted pattern straddle the split) must continue across
// the file boundary as if the capture had never rotated.
func TestPcapReplayAcrossFileBoundary(t *testing.T) {
	c := corpus.EvasionWrap()
	m := corpusMatcher(t, BackendAuto)
	want := oracleCounts(m, c)

	// Split mid-sequence: the corpus interleaves its flows across the whole
	// record list precisely so any midpoint cuts through live flows.
	half := len(c.Records) / 2
	part := func(recs []corpus.Record) []byte {
		sub := &corpus.Corpus{Writer: c.Writer, Records: recs}
		return sub.Bytes()
	}
	fileA, fileB := part(c.Records[:half]), part(c.Records[half:])

	var mu sync.Mutex
	got := map[matchKey]int{}
	gw := m.NewEngine(2).Gateway(GatewayConfig{EngineShards: 2}, func(fm FlowMatch) {
		mu.Lock()
		got[matchKey{fm.Tuple, fm.PatternID, fm.Start, fm.End}]++
		mu.Unlock()
	})
	for _, raw := range [][]byte{fileA, fileB} {
		if _, err := gw.ReplayPcap(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	}
	gw.Flush()
	gw.Close()

	for k, n := range want {
		if got[k] != n {
			t.Errorf("match %+v: got %d, oracle %d", k, got[k], n)
		}
	}
	for k := range got {
		if want[k] == 0 {
			t.Errorf("unexpected match %+v", k)
		}
	}
}

// TestPcapReplayTruncatedFile: a capture cut mid-record reports
// io.ErrUnexpectedEOF together with the partial accounting, rather than
// passing as a short but clean replay.
func TestPcapReplayTruncatedFile(t *testing.T) {
	c := corpus.HTTPMixed()
	raw := c.Bytes()
	m := corpusMatcher(t, BackendAuto)
	gw := m.NewEngine(1).Gateway(GatewayConfig{}, func(FlowMatch) {})
	defer gw.Close()

	rs, err := gw.ReplayPcap(bytes.NewReader(raw[:len(raw)-7]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated replay error = %v, want io.ErrUnexpectedEOF", err)
	}
	if rs.Frames != c.Stats.Frames-1 {
		t.Errorf("partial replay read %d frames, want %d", rs.Frames, c.Stats.Frames-1)
	}

	// A non-pcap reader fails at the header, before any ingestion.
	if _, err := gw.ReplayPcap(bytes.NewReader([]byte("not a pcap file at all"))); err == nil {
		t.Error("garbage input did not error")
	}
}
