package dpi

import (
	"bytes"
	"strings"
	"testing"
)

func webRules(t *testing.T) *Ruleset {
	t.Helper()
	r := NewRuleset()
	r.MustAdd("phf", []byte("/cgi-bin/phf"))
	r.MustAdd("nop-sled", []byte{0x90, 0x90, 0x90, 0x90})
	r.MustAdd("etc-passwd", []byte("/etc/passwd"))
	r.MustAdd("cmd-exe", []byte("cmd.exe"))
	return r
}

func TestAddAndLookup(t *testing.T) {
	r := webRules(t)
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Name(0) != "phf" {
		t.Fatalf("Name(0) = %q", r.Name(0))
	}
	if !bytes.Equal(r.Content(1), []byte{0x90, 0x90, 0x90, 0x90}) {
		t.Fatalf("Content(1) = %v", r.Content(1))
	}
	if r.Name(99) != "" || r.Content(99) != nil {
		t.Fatal("phantom pattern 99")
	}
}

func TestAddRejectsBadPatterns(t *testing.T) {
	r := NewRuleset()
	if _, err := r.Add("empty", nil); err == nil {
		t.Error("empty content accepted")
	}
	r.MustAdd("a", []byte("abc"))
	if _, err := r.Add("dup", []byte("abc")); err == nil {
		t.Error("duplicate content accepted")
	}
}

func TestAddSnortContent(t *testing.T) {
	r := NewRuleset()
	id, err := r.AddSnortContent("shell", "|90 90|/bin/sh")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x90, 0x90, '/', 'b', 'i', 'n', '/', 's', 'h'}
	if !bytes.Equal(r.Content(id), want) {
		t.Fatalf("content = %v", r.Content(id))
	}
	if _, err := r.AddSnortContent("bad", "|zz|"); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestCompileAndFindAll(t *testing.T) {
	m, err := Compile(webRules(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("GET /cgi-bin/phf?Qalias=x HTTP/1.0 cmd.exe")
	got := m.FindAll(payload)
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
	first := got[0]
	if first.PatternID != 0 || first.Start != 4 || first.End != 16 {
		t.Fatalf("first match = %+v, want phf at [4,16)", first)
	}
	if first.PacketID != -1 {
		t.Fatalf("PacketID = %d, want -1 for single scans", first.PacketID)
	}
	if got[1].PatternID != 3 {
		t.Fatalf("second match = %+v, want cmd-exe", got[1])
	}
}

func TestScanStreamsMatches(t *testing.T) {
	m, err := Compile(webRules(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	m.Scan([]byte("xx/etc/passwd"), func(mt Match) { ids = append(ids, mt.PatternID) })
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("streamed ids = %v", ids)
	}
}

func TestCompileEmptyFails(t *testing.T) {
	if _, err := Compile(NewRuleset(), Config{}); err == nil {
		t.Fatal("empty ruleset compiled")
	}
}

func TestCompileBadConfigFails(t *testing.T) {
	if _, err := Compile(webRules(t), Config{MaxDefaultDepth: 5}); err == nil {
		t.Fatal("MaxDefaultDepth=5 accepted")
	}
}

func TestStatsShape(t *testing.T) {
	rs, err := GenerateSnortLike(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Reduction < 0.9 {
		t.Fatalf("reduction %.3f < 0.9", st.Reduction)
	}
	if st.D1Defaults == 0 || st.D2Defaults == 0 || st.D3Defaults == 0 {
		t.Fatalf("defaults missing: %+v", st)
	}
	if !(st.OriginalAvg > st.AvgAfterD1 && st.AvgAfterD1 > st.AvgAfterD12 &&
		st.AvgAfterD12 >= st.AvgAfterD123) {
		t.Fatalf("averages not decreasing: %+v", st)
	}
}

func TestVerify(t *testing.T) {
	m, err := Compile(webRules(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		[]byte("nothing here"),
		[]byte("/cgi-bin/phf"),
		{0x90, 0x90, 0x90, 0x90, 0x90},
	}
	if err := m.Verify(payloads); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedCompileMatchesSingle(t *testing.T) {
	rs, err := GenerateSnortLike(600, 13)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Compile(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Compile(rs, Config{Groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte("prefix "), rs.Content(5)...)
	payload = append(payload, []byte(" suffix")...)
	a, b := single.FindAll(payload), grouped.FindAll(payload)
	if len(a) != len(b) {
		t.Fatalf("single found %d, grouped %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRulesetWriteParseRoundTrip(t *testing.T) {
	r := webRules(t)
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ParseRuleset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("round trip lost patterns: %d != %d", r2.Len(), r.Len())
	}
	for id := 0; id < r.Len(); id++ {
		if !bytes.Equal(r.Content(id), r2.Content(id)) {
			t.Fatalf("pattern %d content changed", id)
		}
	}
}

func TestReducePublicAPI(t *testing.T) {
	rs, err := GenerateSnortLike(400, 21)
	if err != nil {
		t.Fatal(err)
	}
	small, err := rs.Reduce(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if small.Len() != 100 {
		t.Fatalf("reduced to %d", small.Len())
	}
}

func TestAddAfterReduceDoesNotReuseIDs(t *testing.T) {
	// Reduce preserves sparse original IDs; a subsequent Add must mint a
	// fresh ID, not collide with a survivor whose ID equals Len().
	rs, err := GenerateSnortLike(400, 21)
	if err != nil {
		t.Fatal(err)
	}
	small, err := rs.Reduce(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	id := small.MustAdd("fresh", []byte("a brand new pattern"))
	for prior := 0; prior < id; prior++ {
		if small.Name(prior) == "fresh" {
			t.Fatalf("Add reused surviving ID %d", prior)
		}
	}
	if !bytes.Equal(small.Content(id), []byte("a brand new pattern")) {
		t.Fatalf("Content(%d) = %q", id, small.Content(id))
	}
	m, err := Compile(small, Config{})
	if err != nil {
		t.Fatalf("compile after reduce+add: %v", err)
	}
	got := m.FindAll([]byte("xx a brand new pattern yy"))
	found := false
	for _, mt := range got {
		if mt.PatternID == id {
			if mt.Start != 3 || mt.End != 3+len("a brand new pattern") {
				t.Fatalf("match offsets %+v", mt)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("added pattern not matched: %v", got)
	}
}

func TestAcceleratorEndToEnd(t *testing.T) {
	rs, err := GenerateSnortLike(600, 31)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rs, Config{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(m, Stratix3)
	if err != nil {
		t.Fatal(err)
	}
	// Three packets, the second carrying a known pattern.
	target := rs.Content(17)
	payloads := [][]byte{
		bytes.Repeat([]byte("clean traffic "), 40),
		append(append(bytes.Repeat([]byte{0xAB}, 100), target...), bytes.Repeat([]byte{0xCD}, 100)...),
		bytes.Repeat([]byte("more clean bytes"), 30),
	}
	matches, err := a.ScanPackets(payloads)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mt := range matches {
		if mt.PacketID == 1 && mt.PatternID == 17 {
			if mt.Start != 100 || mt.End != 100+len(target) {
				t.Fatalf("match offsets %+v", mt)
			}
			found = true
		}
		if mt.PacketID < 0 || mt.PacketID > 2 {
			t.Fatalf("bad packet ID %+v", mt)
		}
	}
	if !found {
		t.Fatal("pattern 17 not found in packet 1")
	}

	rep := a.Report()
	if rep.Device != "Stratix III" || rep.Blocks != 6 || rep.Groups != 2 || rep.ConcurrentSets != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.ThroughputGbps < 22 || rep.ThroughputGbps > 22.2 {
		t.Fatalf("throughput %.2f, want 22.1 (Table II)", rep.ThroughputGbps)
	}
	if rep.MaxPowerW != 13.28 {
		t.Fatalf("max power %.2f, want 13.28", rep.MaxPowerW)
	}
}

func TestAcceleratorPowerSweep(t *testing.T) {
	rs, err := GenerateSnortLike(200, 41)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(m, Cyclone3)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := a.PowerSweep(10)
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last[0] < 14.8 || last[0] > 15.0 {
		t.Fatalf("top throughput %.2f Gbps, want 14.9", last[0])
	}
	if last[1] != 2.78 {
		t.Fatalf("top power %.2f W, want 2.78", last[1])
	}
}

func TestDeviceString(t *testing.T) {
	for d, want := range map[Device]string{
		Cyclone3:        "Cyclone III",
		Stratix3:        "Stratix III",
		Stratix3Doubled: "Stratix III (+M144K)",
	} {
		if got := d.String(); got != want {
			t.Errorf("Device(%d).String() = %q, want %q", d, got, want)
		}
	}
	if !strings.Contains(Device(99).String(), "unknown") {
		t.Error("unknown device not reported")
	}
}

func TestAcceleratorRejectsOversizedGroups(t *testing.T) {
	rs, err := GenerateSnortLike(800, 51)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rs, Config{Groups: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccelerator(m, Cyclone3); err == nil {
		t.Fatal("6 groups accepted on a 4-block device")
	}
}
