package dpi

// Cross-layer integration tests: the full pipeline from synthetic ruleset
// generation through grouped compilation, hardware packing and accelerator
// scan-out, cross-checked against the software matcher and the reference
// baselines at every step.

import (
	"bytes"
	"testing"

	"repro/internal/ac"
	"repro/internal/ruleset"
	"repro/internal/traffic"
	"repro/internal/tuck"
)

// internalSet rebuilds the internal set view of a public ruleset.
func internalSet(t *testing.T, r *Ruleset) *ruleset.Set {
	t.Helper()
	s := &ruleset.Set{}
	for id := 0; ; id++ {
		c := r.Content(id)
		if c == nil {
			break
		}
		s.Patterns = append(s.Patterns, ruleset.Pattern{ID: id, Data: c, Name: r.Name(id)})
	}
	if s.Len() == 0 {
		t.Fatal("empty ruleset view")
	}
	return s
}

func TestPipelineEndToEnd(t *testing.T) {
	// Generate → reduce → compile (grouped) → accelerate → scan, and agree
	// with (a) the software matcher, (b) the goto/fail reference, (c) the
	// bitmap baseline on identical traffic.
	rules, err := GenerateSnortLike(1204, 2010)
	if err != nil {
		t.Fatal(err)
	}
	matcher, err := Compile(rules, Config{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := NewAccelerator(matcher, Cyclone3)
	if err != nil {
		t.Fatal(err)
	}
	set := internalSet(t, rules)
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets:       16,
		Bytes:         1200,
		Seed:          99,
		AttackDensity: 1.5,
		Profile:       traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(pkts))
	for i, p := range pkts {
		payloads[i] = p.Payload
	}

	hwMatches, err := accel.ScanPackets(payloads)
	if err != nil {
		t.Fatal(err)
	}

	trie, err := ac.New(set)
	if err != nil {
		t.Fatal(err)
	}
	failRef := ac.NewFailMatcher(trie)
	bitmapRef, err := tuck.BuildBitmap(set)
	if err != nil {
		t.Fatal(err)
	}

	for pid, payload := range payloads {
		var hw []ac.Match
		for _, m := range hwMatches {
			if m.PacketID == pid {
				hw = append(hw, ac.Match{PatternID: int32(m.PatternID), End: m.End})
			}
		}
		var sw []ac.Match
		for _, m := range matcher.FindAll(payload) {
			sw = append(sw, ac.Match{PatternID: int32(m.PatternID), End: m.End})
		}
		gf := failRef.FindAll(payload)
		bm := bitmapRef.FindAll(payload)

		if !ac.MatchesEqual(hw, sw) {
			t.Fatalf("packet %d: hardware %d matches, software %d", pid, len(hw), len(sw))
		}
		if !ac.MatchesEqual(sw, gf) {
			t.Fatalf("packet %d: software %d matches, goto/fail %d", pid, len(sw), len(gf))
		}
		if !ac.MatchesEqual(gf, bm) {
			t.Fatalf("packet %d: goto/fail %d matches, bitmap %d", pid, len(gf), len(bm))
		}
	}
}

func TestPipelineMatchOffsetsExact(t *testing.T) {
	// Every reported [Start, End) must contain exactly the pattern bytes.
	rules, err := GenerateSnortLike(400, 77)
	if err != nil {
		t.Fatal(err)
	}
	matcher, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	set := internalSet(t, rules)
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets: 10, Bytes: 900, Seed: 7, AttackDensity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range pkts {
		for _, m := range matcher.FindAll(p.Payload) {
			want := rules.Content(m.PatternID)
			if !bytes.Equal(p.Payload[m.Start:m.End], want) {
				t.Fatalf("packet %d: match %+v does not span its pattern", p.ID, m)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no matches produced; workload broken")
	}
}

func TestPipelineAdversarialParity(t *testing.T) {
	// On a worst-case stream the accelerator and software matcher agree and
	// the hardware consumes exactly one cycle per byte in every engine.
	rules, err := GenerateSnortLike(300, 55)
	if err != nil {
		t.Fatal(err)
	}
	matcher, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := NewAccelerator(matcher, Stratix3)
	if err != nil {
		t.Fatal(err)
	}
	set := internalSet(t, rules)
	payload, err := traffic.Adversarial(set, 6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := accel.ScanPackets([][]byte{payload})
	if err != nil {
		t.Fatal(err)
	}
	sw := matcher.FindAll(payload)
	if len(hw) != len(sw) {
		t.Fatalf("hardware %d matches, software %d", len(hw), len(sw))
	}
}

func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	build := func() ([]Match, CompressionStats) {
		rules, err := GenerateSnortLike(500, 4242)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Compile(rules, Config{Groups: 2})
		if err != nil {
			t.Fatal(err)
		}
		payload := append([]byte("xx "), rules.Content(123)...)
		return m.FindAll(payload), m.Stats()
	}
	m1, s1 := build()
	m2, s2 := build()
	if s1 != s2 {
		t.Fatalf("stats differ across identical builds:\n%+v\n%+v", s1, s2)
	}
	if len(m1) != len(m2) {
		t.Fatalf("matches differ: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}
