package dpi_test

// Chaos soak: the deterministic fault-injection acceptance suite. Each
// scenario drives the gateway through a seeded fault regime from
// internal/chaos and asserts the two robustness contracts from the same
// run: matches stay oracle-exact over the bytes actually delivered to
// scanning, and the byte-conservation ledger balances at every drained
// checkpoint (Ingested == Scanned + Shed + Skipped + Buffered). This file
// lives in the external test package because internal/chaos imports the
// root dpi package — an internal test package would close an import cycle.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	dpi "repro"
	"repro/internal/chaos"
	"repro/internal/ruleset"
	"repro/internal/traffic"
)

// soakCollector gathers matches by tuple; emit runs on pipeline
// goroutines, so it locks.
type soakCollector struct {
	mu      sync.Mutex
	byTuple map[dpi.FiveTuple][]dpi.Match
}

func newSoakCollector() *soakCollector {
	return &soakCollector{byTuple: map[dpi.FiveTuple][]dpi.Match{}}
}

func (c *soakCollector) emit(fm dpi.FlowMatch) {
	c.mu.Lock()
	c.byTuple[fm.Tuple] = append(c.byTuple[fm.Tuple], fm.Match)
	c.mu.Unlock()
}

func (c *soakCollector) matches(t dpi.FiveTuple) []dpi.Match {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byTuple[t]
}

func soakMatcher(t testing.TB, n int, backend string) (*dpi.Matcher, *ruleset.Set) {
	t.Helper()
	rules, err := dpi.GenerateSnortLike(n, 77)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dpi.Compile(rules, dpi.Config{Groups: 2, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return m, rules.InternalSet()
}

// sameSoakMatches compares match sequences ignoring PacketID (the oracle
// scans whole streams; the gateway attributes segments).
func sameSoakMatches(got, want []dpi.Match) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].PatternID != want[i].PatternID || got[i].Start != want[i].Start || got[i].End != want[i].End {
			return false
		}
	}
	return true
}

func requireBalanced(t *testing.T, st dpi.GatewayStats, when string) {
	t.Helper()
	if l := st.Ledger(); !l.Balanced() {
		t.Fatalf("%s: conservation law violated: %+v (stats %+v)", when, l, st)
	}
}

// TestChaosSoakBlockStorm: under the default Block policy a seeded
// duplicate/reorder storm within the reassembly buffers' reach must be
// invisible — every flow's matches byte-identical to the in-order FindAll
// oracle, across every backend × shard combination, with the ledger
// balancing at the drained checkpoint.
func TestChaosSoakBlockStorm(t *testing.T) {
	for _, backend := range []string{dpi.BackendReference, dpi.BackendBaked, dpi.BackendPrefiltered, dpi.BackendAccelerated} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("backend=%s/shards=%d", backend, shards), func(t *testing.T) {
				m, set := soakMatcher(t, 250, backend)
				w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
					Flows: 16, SegmentsPerFlow: 6, SegmentBytes: 140, Seed: 211,
					CrossDensity: 1.5, AttackDensity: 1, Profile: traffic.Textual,
					Sequenced: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				storm := chaos.New(31).Storm(w.Packets, chaos.StormConfig{DupFactor: 1, ReorderSpan: 24})
				if len(storm) <= len(w.Packets) {
					t.Fatal("storm added no duplicates; soak is vacuous")
				}
				c := newSoakCollector()
				gw := m.NewEngine(4).Gateway(dpi.GatewayConfig{
					EngineShards: shards, StreamWorkers: 3,
				}, c.emit)
				for _, p := range storm {
					if err := gw.Ingest(dpi.GatewayPacket{
						Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
					}); err != nil {
						t.Fatal(err)
					}
				}
				gw.Flush()
				st := gw.Stats()
				requireBalanced(t, st, "after Flush")
				if st.DuplicateBytes == 0 {
					t.Fatal("storm duplicates never reached the reassembler")
				}
				if err := gw.Close(); err != nil {
					t.Fatal(err)
				}
				matched := 0
				for f, tuple := range w.Tuples {
					want := m.FindAll(w.Streams[f])
					got := c.matches(tuple)
					if !sameSoakMatches(got, want) {
						t.Fatalf("flow %d: storm changed results: got %d matches, oracle %d\ngot  %+v\nwant %+v",
							f, len(got), len(want), got, want)
					}
					matched += len(got)
				}
				if matched == 0 {
					t.Fatal("no matches at all; soak is vacuous")
				}
			})
		}
	}
}

// TestChaosSoakOverflowConservation: a storm far beyond the reassembly
// buffer caps (tiny per-flow and global budgets, aggressive gap timeout)
// forces cap drops and gap skips. The full-stream oracle no longer applies
// — what must survive is the ledger: every ingested byte lands in exactly
// one bucket, at the Flush checkpoint and again after Close.
func TestChaosSoakOverflowConservation(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m, set := soakMatcher(t, 200, dpi.BackendAuto)
			w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
				Flows: 12, SegmentsPerFlow: 16, SegmentBytes: 300, Seed: 97,
				CrossDensity: 1, AttackDensity: 1, Profile: traffic.Textual,
				Sequenced: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			storm := chaos.New(5).Storm(w.Packets, chaos.StormConfig{DupFactor: 2, ReorderSpan: 400})
			gw := m.NewEngine(2).Gateway(dpi.GatewayConfig{
				EngineShards: shards, StreamWorkers: 2,
				MaxFlowBuffer: 1024, MaxTotalBuffer: 4096, GapTimeout: 4,
			}, func(dpi.FlowMatch) {})
			for _, p := range storm {
				if err := gw.Ingest(dpi.GatewayPacket{
					Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
				}); err != nil {
					t.Fatal(err)
				}
			}
			gw.Flush()
			st := gw.Stats()
			requireBalanced(t, st, "after Flush")
			if st.ReassemblyDrops == 0 && st.GapSkips == 0 {
				t.Fatalf("storm never hit the caps; soak is vacuous: %+v", st)
			}
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			requireBalanced(t, gw.Stats(), "after Close")
		})
	}
}

// TestChaosSoakShedPacketsDeliveredOracle: with ShedPackets and a chaos
// stall wedging the pipeline, admission sheds packets — and the matches
// over the bytes that WERE delivered must equal the per-flow FindAll
// oracle over each maximal contiguous run of admitted segments, at
// absolute stream offsets. The expected set is computed from the actual
// admission decisions TryIngest reported, so the assertion is exact
// whatever the timing.
func TestChaosSoakShedPacketsDeliveredOracle(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m, set := soakMatcher(t, 250, dpi.BackendAuto)
			w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
				Flows: 12, SegmentsPerFlow: 40, SegmentBytes: 120, Seed: 313,
				CrossDensity: 1, AttackDensity: 1.5, Profile: traffic.Textual,
			})
			if err != nil {
				t.Fatal(err)
			}
			release := make(chan struct{})
			c := newSoakCollector()
			emit := chaos.StallOnce(c.emit, func(dpi.FlowMatch) bool { return true }, release)
			gw := m.NewEngine(2).Gateway(dpi.GatewayConfig{
				EngineShards: shards, StreamWorkers: 1, QueueDepth: 4,
				OverloadPolicy: dpi.ShedPackets, IngestDeadline: -1,
			}, emit)

			// Replay the in-order feed, recording admission per packet. A
			// flow's expected matches are FindAll over each contiguous run of
			// admitted bytes, shifted to the run's absolute stream offset —
			// SkipGap guarantees no gateway match spans a shed packet.
			type acc struct {
				pos      int
				runStart int
				run      []byte
			}
			accs := map[dpi.FiveTuple]*acc{}
			want := map[dpi.FiveTuple][]dpi.Match{}
			closeRun := func(tuple dpi.FiveTuple, a *acc) {
				if len(a.run) == 0 {
					return
				}
				for _, mt := range m.FindAll(a.run) {
					mt.Start += a.runStart
					mt.End += a.runStart
					want[tuple] = append(want[tuple], mt)
				}
				a.run = nil
			}
			shed := 0
			var shedBytes uint64
			for _, p := range w.Packets {
				admitted, err := gw.TryIngest(dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload})
				if err != nil {
					t.Fatal(err)
				}
				a := accs[p.Tuple]
				if a == nil {
					a = &acc{}
					accs[p.Tuple] = a
				}
				if admitted {
					if a.run == nil {
						a.runStart = a.pos
					}
					a.run = append(a.run, p.Payload...)
				} else {
					shed++
					shedBytes += uint64(len(p.Payload))
					closeRun(p.Tuple, a)
				}
				a.pos += len(p.Payload)
			}
			close(release)
			gw.Flush()
			if shed == 0 {
				t.Fatal("nothing was shed; soak is vacuous")
			}
			st := gw.Stats()
			if st.ShedPackets != uint64(shed) || st.ShedBytes != shedBytes {
				t.Fatalf("shed accounting: stats (%d pkts, %d bytes), observed (%d, %d)",
					st.ShedPackets, st.ShedBytes, shed, shedBytes)
			}
			requireBalanced(t, st, "after Flush")
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			for f, tuple := range w.Tuples {
				closeRun(tuple, accs[tuple])
				if got := c.matches(tuple); !sameSoakMatches(got, want[tuple]) {
					t.Fatalf("flow %d: delivered-subset oracle diverged\ngot  %+v\nwant %+v",
						f, got, want[tuple])
				}
			}
		})
	}
}

// TestChaosSoakShedNewFlows: under ShedNewFlows only packets that would
// create flow state are shed; established connections ride out the
// overload untouched. A chaos stall wedges the stream lane, a burst of
// fresh single-segment flows hits the full queue, and afterwards every
// established flow's matches are still the full-stream oracle.
func TestChaosSoakShedNewFlows(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m, set := soakMatcher(t, 250, dpi.BackendAuto)
			w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
				Flows: 8, SegmentsPerFlow: 6, SegmentBytes: 140, Seed: 409,
				CrossDensity: 1, AttackDensity: 1, Profile: traffic.Textual,
			})
			if err != nil {
				t.Fatal(err)
			}
			release := make(chan struct{})
			trigTuple := dpi.FiveTuple{SrcIP: dpi.IPv4(10, 9, 9, 9), DstIP: dpi.IPv4(10, 9, 9, 10),
				SrcPort: 4000, DstPort: 80, Proto: dpi.ProtoTCP}
			c := newSoakCollector()
			emit := chaos.StallOnce(c.emit, func(fm dpi.FlowMatch) bool { return fm.Tuple == trigTuple }, release)
			gw := m.NewEngine(2).Gateway(dpi.GatewayConfig{
				EngineShards: shards, StreamWorkers: 1, QueueDepth: 4,
				OverloadPolicy: dpi.ShedNewFlows, IngestDeadline: -1,
			}, emit)

			// Phase 1: establish the workload's flows while the pipeline is
			// healthy. The opening segments go in first and a Flush barrier
			// guarantees their table entries exist before any follow-up
			// arrives — admission classifies "new flow" against the table, so
			// a follow-up racing its own opener would otherwise be sheddable.
			// After the barrier every packet is established and blocks rather
			// than sheds.
			for _, p := range w.Packets {
				if p.Seq != 0 {
					continue
				}
				if err := gw.Ingest(dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
					t.Fatal(err)
				}
				gw.Flush()
			}
			for _, p := range w.Packets {
				if p.Seq == 0 {
					continue
				}
				if err := gw.Ingest(dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
					t.Fatal(err)
				}
			}
			gw.Flush()

			// Phase 2: wedge the lane. The trigger flow's payload is a full
			// workload stream, guaranteed to match; its first match stalls the
			// lane that scans it.
			if len(m.FindAll(w.Streams[0])) == 0 {
				t.Fatal("trigger payload carries no match; soak is vacuous")
			}
			if admitted, err := gw.TryIngest(dpi.GatewayPacket{Tuple: trigTuple, Payload: w.Streams[0]}); err != nil || !admitted {
				t.Fatalf("trigger packet not admitted (admitted=%v err=%v)", admitted, err)
			}

			// Phase 3: a SYN-flood-shaped burst of fresh single-segment
			// flows. Each is new state, so each may be shed; none may block.
			shed := 0
			for i := 0; i < 600; i++ {
				tup := dpi.FiveTuple{SrcIP: dpi.IPv4(172, 16, byte(i>>8), byte(i)), DstIP: dpi.IPv4(10, 0, 0, 1),
					SrcPort: uint16(10000 + i), DstPort: 80, Proto: dpi.ProtoTCP}
				admitted, err := gw.TryIngest(dpi.GatewayPacket{Tuple: tup, Payload: []byte("fresh-flow-filler-bytes")})
				if err != nil {
					t.Fatal(err)
				}
				if !admitted {
					shed++
				}
			}
			close(release)
			gw.Flush()
			if shed == 0 {
				t.Fatal("no new flows shed; soak is vacuous")
			}
			st := gw.Stats()
			if st.ShedNewFlows != uint64(shed) || st.ShedPackets != uint64(shed) {
				t.Fatalf("every shed packet should be a new flow: %d shed observed, stats %+v", shed, st)
			}
			requireBalanced(t, st, "after Flush")
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			for f, tuple := range w.Tuples {
				want := m.FindAll(w.Streams[f])
				if got := c.matches(tuple); !sameSoakMatches(got, want) {
					t.Fatalf("established flow %d damaged by overload\ngot  %+v\nwant %+v", f, got, want)
				}
			}
		})
	}
}

// TestChaosSoakPanicQuarantine: an injected panic on a victim flow's match
// (detonating on the stream lane itself) must quarantine exactly that one
// flow — the gateway stays live, every other flow's matches are intact,
// the panic lands on the per-shard counter, and the ledger still balances
// because the poisoned packet's bytes move to the quarantined bucket.
func TestChaosSoakPanicQuarantine(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m, set := soakMatcher(t, 250, dpi.BackendAuto)
			w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
				Flows: 20, SegmentsPerFlow: 6, SegmentBytes: 140, Seed: 503,
				CrossDensity: 1, AttackDensity: 1, Profile: traffic.Textual,
				Sequenced: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			victim := -1
			for f := range w.Tuples {
				if len(m.FindAll(w.Streams[f])) > 0 {
					victim = f
					break
				}
			}
			if victim < 0 {
				t.Fatal("no flow matches; soak is vacuous")
			}
			c := newSoakCollector()
			emit := chaos.PanicOnce(c.emit, func(fm dpi.FlowMatch) bool { return fm.Tuple == w.Tuples[victim] })
			gw := m.NewEngine(2).Gateway(dpi.GatewayConfig{
				EngineShards: shards, StreamWorkers: 2,
			}, emit)
			for _, p := range w.Packets {
				if err := gw.Ingest(dpi.GatewayPacket{
					Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
				}); err != nil {
					t.Fatal(err)
				}
			}
			gw.Flush()
			st := gw.Stats()
			if st.Panics != 1 {
				t.Fatalf("Panics = %d, want exactly the 1 injected", st.Panics)
			}
			if st.QuarantinedFlows != 1 {
				t.Fatalf("QuarantinedFlows = %d, want exactly the victim", st.QuarantinedFlows)
			}
			var byShard uint64
			for _, n := range gw.PanicsByShard() {
				byShard += n
			}
			if byShard != st.Panics {
				t.Fatalf("per-shard panic counters sum to %d, total %d", byShard, st.Panics)
			}
			// Containment working is the healthy outcome: a quarantined flow
			// must not trip the liveness probe.
			if h := gw.Health(); !h.Healthy || h.Panics != 1 || h.QuarantinedFlows != 1 {
				t.Fatalf("health after containment: %+v", h)
			}
			requireBalanced(t, st, "after Flush")
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			matched := 0
			for f, tuple := range w.Tuples {
				if f == victim {
					continue
				}
				want := m.FindAll(w.Streams[f])
				got := c.matches(tuple)
				if !sameSoakMatches(got, want) {
					t.Fatalf("flow %d collateral damage from quarantine of flow %d\ngot  %+v\nwant %+v",
						f, victim, got, want)
				}
				matched += len(got)
			}
			if matched == 0 {
				t.Fatal("no surviving matches; soak is vacuous")
			}
		})
	}
}

// TestChaosSoakWatchdogStall: a wedged emit callback (chaos stall) must
// flip Health to stalled once the lane's queue head exceeds the threshold,
// turn /healthz into a 503 with a diagnosable JSON body, and clear cleanly
// once the wedge releases.
func TestChaosSoakWatchdogStall(t *testing.T) {
	m, set := soakMatcher(t, 200, dpi.BackendAuto)
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 1, SegmentsPerFlow: 4, SegmentBytes: 140, Seed: 601,
		CrossDensity: 1, AttackDensity: 2, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FindAll(w.Streams[0])) == 0 {
		t.Fatal("workload carries no match; stall never triggers")
	}
	release := make(chan struct{})
	c := newSoakCollector()
	emit := chaos.StallOnce(c.emit, func(dpi.FlowMatch) bool { return true }, release)
	gw := m.NewEngine(1).Gateway(dpi.GatewayConfig{
		StreamWorkers: 1, StallThreshold: 30 * time.Millisecond,
	}, emit)
	for _, p := range w.Packets {
		if err := gw.Ingest(dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := gw.Health()
		if !h.Healthy {
			stalled := false
			for _, l := range h.BusyLanes {
				stalled = stalled || l.Stalled
			}
			if !stalled {
				t.Fatalf("unhealthy without a stalled lane: %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never detected the stall: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	gw.Healthz().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz during stall: %d, want 503", rec.Code)
	}
	var h dpi.GatewayHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || h.Healthy {
		t.Fatalf("/healthz body during stall: %q (err %v)", rec.Body.String(), err)
	}

	close(release)
	gw.Flush()
	if h := gw.Health(); !h.Healthy {
		t.Fatalf("still unhealthy after release + Flush: %+v", h)
	}
	rec = httptest.NewRecorder()
	gw.Healthz().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz after release: %d, want 200", rec.Code)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	want := m.FindAll(w.Streams[0])
	if got := c.matches(w.Tuples[0]); !sameSoakMatches(got, want) {
		t.Fatalf("stall lost matches\ngot  %+v\nwant %+v", got, want)
	}
}
